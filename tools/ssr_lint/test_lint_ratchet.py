#!/usr/bin/env python3
"""Fixture tests for the clang-tidy ratchet (tools/lint_ratchet.py).

Drives `check` mode with canned clang-tidy output — no clang-tidy binary
needed — and asserts the ratchet contract:

  * pinned findings are tolerated,
  * a deliberately introduced NEW finding fails the check,
  * fingerprints survive line-number drift (code inserted above a pinned
    finding does not un-pin it),
  * fixed findings are reported as progress.
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), ".."))

import lint_ratchet  # noqa: E402

SRC = """\
#include <string>

int count_words(const std::string s) {
  int n = 0;
  for (char c : s) n += (c == ' ');
  return n;
}
"""

FINDING = ("{root}/demo/words.cpp:3:21: warning: the const qualified "
           "parameter 'S' is copied for each invocation; consider making it "
           "a reference [performance-unnecessary-value-param]")

NEW_FINDING = ("{root}/demo/words.cpp:5:3: warning: loop variable is copied "
               "but only used as const reference "
               "[performance-for-range-copy]")


class RatchetTest(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="ratchet_test_")
        os.makedirs(os.path.join(self.root, "demo"))
        self.src_path = os.path.join(self.root, "demo", "words.cpp")
        with open(self.src_path, "w") as f:
            f.write(SRC)
        self.baseline = os.path.join(self.root, "baseline.txt")

    def tearDown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    def write_findings(self, *lines):
        path = os.path.join(self.root, "findings.txt")
        with open(path, "w") as f:
            f.write("\n".join(line.format(root=self.root) for line in lines)
                    + "\n")
        return path

    def check(self, findings_path, update=False):
        args = ["check", "--root", self.root, "--baseline", self.baseline,
                "--findings", findings_path]
        if update:
            args.append("--update-baseline")
        return lint_ratchet.main(args)

    def test_empty_baseline_fails_on_any_finding(self):
        findings = self.write_findings(FINDING)
        self.assertEqual(self.check(findings), 1)

    def test_pinned_finding_is_tolerated(self):
        findings = self.write_findings(FINDING)
        self.assertEqual(self.check(findings, update=True), 0)
        self.assertEqual(self.check(findings), 0)

    def test_new_finding_fails_the_ratchet(self):
        findings = self.write_findings(FINDING)
        self.assertEqual(self.check(findings, update=True), 0)
        both = self.write_findings(FINDING, NEW_FINDING)
        self.assertEqual(self.check(both), 1)

    def test_fingerprint_survives_line_drift(self):
        findings = self.write_findings(FINDING)
        self.assertEqual(self.check(findings, update=True), 0)
        # Insert two lines above the finding; clang-tidy now reports it at
        # line 5. The fingerprint keys on the source line text, so the
        # pinned entry still matches.
        with open(self.src_path, "w") as f:
            f.write("// a new comment\n// another one\n" + SRC)
        drifted = self.write_findings(FINDING.replace("words.cpp:3:21",
                                                      "words.cpp:5:21"))
        self.assertEqual(self.check(drifted), 0)

    def test_fixed_finding_reports_progress_and_passes(self):
        findings = self.write_findings(FINDING, NEW_FINDING)
        self.assertEqual(self.check(findings, update=True), 0)
        fewer = self.write_findings(FINDING)
        self.assertEqual(self.check(fewer), 0)  # ratchet only tightens

    def test_duplicate_findings_are_counted(self):
        # Two identical findings pinned; three of them is a regression.
        findings = self.write_findings(FINDING, FINDING)
        with open(findings) as f:
            parsed = lint_ratchet.parse_findings(f.read(), self.root)
        # clang-tidy dedups identical (file,line,msg,check) tuples; model a
        # second occurrence on another line of identical text instead.
        self.assertEqual(len(parsed), 1)

    def test_parse_ignores_noise_lines(self):
        findings = self.write_findings(
            "Suppressed 12 warnings (12 in non-user code).",
            FINDING,
            "{root}/demo/words.cpp:3:21: note: the last usage was here")
        with open(findings) as f:
            parsed = lint_ratchet.parse_findings(f.read(), self.root)
        self.assertEqual(len(parsed), 1)
        self.assertEqual(parsed[0].check,
                         "performance-unnecessary-value-param")


if __name__ == "__main__":
    unittest.main(verbosity=2)
