#!/usr/bin/env python3
"""Compare two BENCH_scenarios.json files (baseline vs. candidate).

Prints a per-scenario table of events/sec with the speedup factor, and exits
nonzero when --max-regress is given and any scenario slowed down by more
than that factor (e.g. --max-regress 2.0 fails on a 2x slowdown). Without
the flag the comparison is informational, which is the right default for
shared CI runners whose absolute timings wobble.

Usage:
  tools/bench_compare.py BENCH_scenarios.json build/BENCH_scenarios.json
  tools/bench_compare.py --max-regress 2.0 baseline.json candidate.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return (
        {s["name"]: s for s in doc.get("scenarios", [])},
        {s["shards"]: s for s in doc.get("sharded_throughput", [])},
    )


# Shared-nothing scaling floors for --check-shard-scaling: aggregate
# capacity (CPU-time normalized, so stable on shared runners) must reach
# these multiples of the 1-shard run.
SHARD_SCALING_FLOORS = {2: 1.6, 4: 2.5}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail when events/sec drops by more than FACTOR on any scenario",
    )
    ap.add_argument(
        "--check-shard-scaling",
        action="store_true",
        help="fail unless the candidate's sharded throughput reaches "
        + ", ".join(f"{v}x at {k} shards" for k, v in SHARD_SCALING_FLOORS.items()),
    )
    args = ap.parse_args()

    base, base_sharded = load(args.baseline)
    cand, cand_sharded = load(args.candidate)

    rows = []
    failed = []
    scaling_failed = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name)
        c = cand.get(name)
        if b is None or c is None:
            rows.append((name, b, c, None))
            continue
        b_eps = b.get("events_per_sec", 0.0)
        c_eps = c.get("events_per_sec", 0.0)
        speedup = c_eps / b_eps if b_eps > 0 else float("inf")
        rows.append((name, b_eps, c_eps, speedup))
        if args.max_regress is not None and speedup < 1.0 / args.max_regress:
            failed.append((name, speedup))

    print(f"{'scenario':<28} {'baseline ev/s':>14} {'candidate ev/s':>15} {'speedup':>8}")
    for name, b, c, speedup in rows:
        if speedup is None:
            side = "baseline" if c is None else "candidate"
            print(f"{name:<28} {'—':>14} {'—':>15}   (missing in {side})")
        else:
            print(f"{name:<28} {b:>14,.0f} {c:>15,.0f} {speedup:>7.2f}x")

    if base_sharded or cand_sharded:
        print()
        print(
            f"{'sharded throughput':<28} {'baseline ev/cpu-s':>18} "
            f"{'candidate ev/cpu-s':>19} {'cand scaling':>13}"
        )
        for shards in sorted(set(base_sharded) | set(cand_sharded)):
            b_eps = base_sharded.get(shards, {}).get("agg_events_per_cpu_sec")
            c_eps = cand_sharded.get(shards, {}).get("agg_events_per_cpu_sec")
            scaling = cand_sharded.get(shards, {}).get("speedup_vs_1shard")
            b_col = f"{b_eps:,.0f}" if b_eps is not None else "—"
            c_col = f"{c_eps:,.0f}" if c_eps is not None else "—"
            s_col = f"{scaling:.2f}x" if scaling is not None else "—"
            print(f"{f'{shards} shard(s)':<28} {b_col:>18} {c_col:>19} {s_col:>13}")
        if args.check_shard_scaling:
            for shards, floor in SHARD_SCALING_FLOORS.items():
                got = cand_sharded.get(shards, {}).get("speedup_vs_1shard", 0.0)
                if got < floor:
                    scaling_failed.append((shards, got, floor))

    for name, speedup in failed:
        print(
            f"REGRESSION: {name} at {speedup:.2f}x of baseline "
            f"(threshold {1.0 / args.max_regress:.2f}x)",
            file=sys.stderr,
        )
    for shards, got, floor in scaling_failed:
        print(
            f"SCALING: {shards} shards reached {got:.2f}x of the 1-shard "
            f"aggregate (floor {floor}x)",
            file=sys.stderr,
        )
    return 1 if failed or scaling_failed else 0


if __name__ == "__main__":
    sys.exit(main())
