#!/usr/bin/env python3
"""Compare two BENCH_scenarios.json files (baseline vs. candidate).

Prints a per-scenario table of events/sec with the speedup factor, and exits
nonzero when --max-regress is given and any scenario slowed down by more
than that factor (e.g. --max-regress 2.0 fails on a 2x slowdown). Without
the flag the comparison is informational, which is the right default for
shared CI runners whose absolute timings wobble.

Usage:
  tools/bench_compare.py BENCH_scenarios.json build/BENCH_scenarios.json
  tools/bench_compare.py --max-regress 2.0 baseline.json candidate.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {s["name"]: s for s in doc.get("scenarios", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail when events/sec drops by more than FACTOR on any scenario",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    rows = []
    failed = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name)
        c = cand.get(name)
        if b is None or c is None:
            rows.append((name, b, c, None))
            continue
        b_eps = b.get("events_per_sec", 0.0)
        c_eps = c.get("events_per_sec", 0.0)
        speedup = c_eps / b_eps if b_eps > 0 else float("inf")
        rows.append((name, b_eps, c_eps, speedup))
        if args.max_regress is not None and speedup < 1.0 / args.max_regress:
            failed.append((name, speedup))

    print(f"{'scenario':<28} {'baseline ev/s':>14} {'candidate ev/s':>15} {'speedup':>8}")
    for name, b, c, speedup in rows:
        if speedup is None:
            side = "baseline" if c is None else "candidate"
            print(f"{name:<28} {'—':>14} {'—':>15}   (missing in {side})")
        else:
            print(f"{name:<28} {b:>14,.0f} {c:>15,.0f} {speedup:>7.2f}x")

    if failed:
        for name, speedup in failed:
            print(
                f"REGRESSION: {name} at {speedup:.2f}x of baseline "
                f"(threshold {1.0 / args.max_regress:.2f}x)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
