#!/usr/bin/env python3
"""Compare two BENCH_scenarios.json files (baseline vs. candidate).

Prints a per-scenario table of events/sec with the speedup factor, and exits
nonzero when --max-regress is given and any scenario slowed down by more
than that factor (e.g. --max-regress 2.0 fails on a 2x slowdown). Without
the flag the comparison is informational, which is the right default for
shared CI runners whose absolute timings wobble.

Usage:
  tools/bench_compare.py BENCH_scenarios.json build/BENCH_scenarios.json
  tools/bench_compare.py --max-regress 2.0 baseline.json candidate.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return (
        {s["name"]: s for s in doc.get("scenarios", [])},
        {s["shards"]: s for s in doc.get("sharded_throughput", [])},
        {s["batch"]: s for s in doc.get("udp_batch", [])},
        {s["jobs"]: s for s in doc.get("sweep", [])},
    )


# Shared-nothing scaling floors for --check-shard-scaling: aggregate
# capacity (CPU-time normalized, so stable on shared runners) must reach
# these multiples of the 1-shard run.
SHARD_SCALING_FLOORS = {2: 1.6, 4: 2.5}

# Syscall-batching floors for --check-udp-batch, on the candidate's batched
# udp_batch rows (batch > 1). The hard contract is coalescing: the sendmmsg
# ring must actually share syscalls (datagrams per send syscall), which is a
# deterministic property of the ring, not a timing. The throughput ratio
# over the batch=1 baseline is also floored, but conservatively: how much a
# saved syscall buys depends on the host's syscall-entry cost (mitigation
# config) and on whether sender and receiver share a core — measured 1.2 to
# 1.3x on a 1-core dev host with cheap syscalls, far more where entry costs
# approach a microsecond. The floor asserts batching never regresses and
# measurably helps everywhere, without encoding one host's mitigation
# settings into CI.
UDP_BATCH_MIN_DGRAMS_PER_SYSCALL = 8.0
UDP_BATCH_MIN_SPEEDUP = 1.05

# Sweep-engine scaling floors for --check-sweep-scaling: the parallel
# (spec, seed) sweep shares nothing between jobs, so aggregate capacity
# (CPU-time normalized by the slowest worker, like the shard floors — and
# for the same reason: stable on 1-core shared runners) must reach these
# multiples of the jobs=1 run.
SWEEP_SCALING_FLOORS = {2: 1.5, 4: 2.0}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail when events/sec drops by more than FACTOR on any scenario",
    )
    ap.add_argument(
        "--check-shard-scaling",
        action="store_true",
        help="fail unless the candidate's sharded throughput reaches "
        + ", ".join(f"{v}x at {k} shards" for k, v in SHARD_SCALING_FLOORS.items()),
    )
    ap.add_argument(
        "--check-udp-batch",
        action="store_true",
        help="fail unless the candidate's batched udp_batch rows reach "
        f"{UDP_BATCH_MIN_DGRAMS_PER_SYSCALL:.0f} datagrams/send-syscall and "
        f"{UDP_BATCH_MIN_SPEEDUP}x the batch=1 packet rate",
    )
    ap.add_argument(
        "--check-sweep-scaling",
        action="store_true",
        help="fail unless the candidate's sweep throughput reaches "
        + ", ".join(f"{v}x at {k} jobs" for k, v in SWEEP_SCALING_FLOORS.items()),
    )
    args = ap.parse_args()

    base, base_sharded, base_udp, base_sweep = load(args.baseline)
    cand, cand_sharded, cand_udp, cand_sweep = load(args.candidate)

    rows = []
    failed = []
    scaling_failed = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name)
        c = cand.get(name)
        if b is None or c is None:
            rows.append((name, b, c, None))
            continue
        b_eps = b.get("events_per_sec", 0.0)
        c_eps = c.get("events_per_sec", 0.0)
        speedup = c_eps / b_eps if b_eps > 0 else float("inf")
        rows.append((name, b_eps, c_eps, speedup))
        if args.max_regress is not None and speedup < 1.0 / args.max_regress:
            failed.append((name, speedup))

    print(f"{'scenario':<28} {'baseline ev/s':>14} {'candidate ev/s':>15} {'speedup':>8}")
    for name, b, c, speedup in rows:
        if speedup is None:
            side = "baseline" if c is None else "candidate"
            print(f"{name:<28} {'—':>14} {'—':>15}   (missing in {side})")
        else:
            print(f"{name:<28} {b:>14,.0f} {c:>15,.0f} {speedup:>7.2f}x")

    if base_sharded or cand_sharded:
        print()
        print(
            f"{'sharded throughput':<28} {'baseline ev/cpu-s':>18} "
            f"{'candidate ev/cpu-s':>19} {'cand scaling':>13}"
        )
        for shards in sorted(set(base_sharded) | set(cand_sharded)):
            b_eps = base_sharded.get(shards, {}).get("agg_events_per_cpu_sec")
            c_eps = cand_sharded.get(shards, {}).get("agg_events_per_cpu_sec")
            scaling = cand_sharded.get(shards, {}).get("speedup_vs_1shard")
            b_col = f"{b_eps:,.0f}" if b_eps is not None else "—"
            c_col = f"{c_eps:,.0f}" if c_eps is not None else "—"
            s_col = f"{scaling:.2f}x" if scaling is not None else "—"
            print(f"{f'{shards} shard(s)':<28} {b_col:>18} {c_col:>19} {s_col:>13}")
        if args.check_shard_scaling:
            for shards, floor in SHARD_SCALING_FLOORS.items():
                got = cand_sharded.get(shards, {}).get("speedup_vs_1shard", 0.0)
                if got < floor:
                    scaling_failed.append((shards, got, floor))

    sweep_failed = []
    if base_sweep or cand_sweep:
        print()
        print(
            f"{'sweep throughput':<28} {'baseline ev/cpu-s':>18} "
            f"{'candidate ev/cpu-s':>19} {'cand scaling':>13}"
        )
        for jobs in sorted(set(base_sweep) | set(cand_sweep)):
            b_eps = base_sweep.get(jobs, {}).get("agg_events_per_cpu_sec")
            c_eps = cand_sweep.get(jobs, {}).get("agg_events_per_cpu_sec")
            scaling = cand_sweep.get(jobs, {}).get("speedup_vs_1job")
            b_col = f"{b_eps:,.0f}" if b_eps is not None else "—"
            c_col = f"{c_eps:,.0f}" if c_eps is not None else "—"
            s_col = f"{scaling:.2f}x" if scaling is not None else "—"
            print(f"{f'{jobs} job(s)':<28} {b_col:>18} {c_col:>19} {s_col:>13}")
        if args.check_sweep_scaling:
            for jobs, floor in SWEEP_SCALING_FLOORS.items():
                got = cand_sweep.get(jobs, {}).get("speedup_vs_1job", 0.0)
                if got < floor:
                    sweep_failed.append((jobs, got, floor))
    elif args.check_sweep_scaling:
        sweep_failed.append((0, 0.0, 0.0))

    udp_failed = []
    if base_udp or cand_udp:
        print()
        print(
            f"{'udp batching':<28} {'baseline pkt/s':>15} "
            f"{'candidate pkt/s':>16} {'dgrams/syscall':>15} {'speedup':>8}"
        )
        for batch in sorted(set(base_udp) | set(cand_udp)):
            b_pps = base_udp.get(batch, {}).get("packets_per_sec")
            c = cand_udp.get(batch, {})
            b_col = f"{b_pps:,.0f}" if b_pps is not None else "—"
            c_col = f"{c['packets_per_sec']:,.0f}" if c else "—"
            d_col = f"{c['datagrams_per_send_syscall']:.2f}" if c else "—"
            s_col = f"{c['speedup_vs_batch1']:.2f}x" if c else "—"
            print(
                f"{f'batch={batch}':<28} {b_col:>15} {c_col:>16} "
                f"{d_col:>15} {s_col:>8}"
            )
        if args.check_udp_batch:
            batched = {b: s for b, s in cand_udp.items() if b > 1}
            if not batched:
                udp_failed.append("no batched udp_batch row in the candidate")
            for batch, s in sorted(batched.items()):
                dps = s.get("datagrams_per_send_syscall", 0.0)
                spd = s.get("speedup_vs_batch1", 0.0)
                if dps < UDP_BATCH_MIN_DGRAMS_PER_SYSCALL:
                    udp_failed.append(
                        f"batch={batch} coalesced {dps:.2f} datagrams/send-"
                        f"syscall (floor {UDP_BATCH_MIN_DGRAMS_PER_SYSCALL:.0f})"
                    )
                if spd < UDP_BATCH_MIN_SPEEDUP:
                    udp_failed.append(
                        f"batch={batch} ran at {spd:.2f}x the batch=1 packet "
                        f"rate (floor {UDP_BATCH_MIN_SPEEDUP}x)"
                    )
    elif args.check_udp_batch:
        udp_failed.append("candidate has no udp_batch section")

    for name, speedup in failed:
        print(
            f"REGRESSION: {name} at {speedup:.2f}x of baseline "
            f"(threshold {1.0 / args.max_regress:.2f}x)",
            file=sys.stderr,
        )
    for shards, got, floor in scaling_failed:
        print(
            f"SCALING: {shards} shards reached {got:.2f}x of the 1-shard "
            f"aggregate (floor {floor}x)",
            file=sys.stderr,
        )
    for jobs, got, floor in sweep_failed:
        if jobs == 0:
            print("SWEEP: candidate has no sweep section", file=sys.stderr)
        else:
            print(
                f"SWEEP: {jobs} jobs reached {got:.2f}x of the 1-job "
                f"aggregate (floor {floor}x)",
                file=sys.stderr,
            )
    for msg in udp_failed:
        print(f"UDP-BATCH: {msg}", file=sys.stderr)
    return 1 if failed or scaling_failed or udp_failed or sweep_failed else 0


if __name__ == "__main__":
    sys.exit(main())
