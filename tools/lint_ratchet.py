#!/usr/bin/env python3
"""clang-tidy ratchet: fail only on findings that are NOT in the baseline.

The repo carries a checked-in baseline (tools/clang_tidy_baseline.txt) that
pins the currently-known clang-tidy findings. CI re-runs clang-tidy and
compares fingerprints:

  * a finding whose fingerprint is in the baseline → tolerated (pinned debt)
  * a finding not in the baseline → NEW, the build fails
  * a baseline entry that no longer fires → reported as ratchet progress
    (re-pin with --update-baseline to lock the improvement in)

Fingerprints are line-number independent: sha1(file | check | stripped
source line text). Inserting code above a pinned finding does not un-pin
it; editing the offending line (or fixing it) does.

Two entry points:

  lint_ratchet.py run --build-dir build [--update-baseline]
      Runs clang-tidy (needs a compile_commands.json in --build-dir) over
      the repo sources and compares against the baseline. Findings are
      written to --findings-out for artifact upload.

  lint_ratchet.py check --findings FILE [--update-baseline]
      Compares a pre-recorded clang-tidy output file against the baseline —
      no clang-tidy needed. This is what the fixture tests drive.

Exit status: 0 ok, 1 new findings (or clang-tidy itself failed), 2 usage.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import re
import shutil
import subprocess
import sys

FINDING_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<sev>warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,\-]+)\]\s*$")

BASELINE_HEADER = "# ssr clang-tidy ratchet baseline v1"


class Finding:
    def __init__(self, path, line, message, check):
        self.path = path
        self.line = line
        self.message = message
        self.check = check

    def location(self):
        return f"{self.path}:{self.line}"


def normalize_path(path, root):
    p = os.path.abspath(path) if os.path.isabs(path) else \
        os.path.abspath(os.path.join(root, path))
    try:
        rel = os.path.relpath(p, root)
    except ValueError:
        return path.replace(os.sep, "/")
    return rel.replace(os.sep, "/")


def parse_findings(text, root):
    """Parses clang-tidy textual output into Finding objects (deduplicated:
    clang-tidy repeats header findings once per including TU)."""
    findings, seen = [], set()
    for line in text.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        path = normalize_path(m.group("file"), root)
        key = (path, m.group("line"), m.group("msg"), m.group("check"))
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(path, int(m.group("line")),
                                m.group("msg"), m.group("check")))
    return findings


def source_line_text(root, finding, cache):
    path = os.path.join(root, finding.path)
    if path not in cache:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                cache[path] = f.read().splitlines()
        except OSError:
            cache[path] = None
    lines = cache[path]
    if lines is None or not (1 <= finding.line <= len(lines)):
        # Unreadable file or stale line: fall back to the message, which is
        # stable enough for a missing-source situation.
        return finding.message
    return lines[finding.line - 1].strip()


def fingerprint(root, finding, cache):
    text = source_line_text(root, finding, cache)
    h = hashlib.sha1(
        f"{finding.path}|{finding.check}|{text}".encode()).hexdigest()
    return h[:16]


def count_fingerprints(root, findings):
    """fingerprint -> (count, sample Finding)."""
    cache = {}
    out = {}
    for f in findings:
        fp = fingerprint(root, f, cache)
        count, sample = out.get(fp, (0, f))
        out[fp] = (count + 1, sample)
    return out


# ---------------------------------------------------------------------------
# Baseline file I/O
# ---------------------------------------------------------------------------

def load_baseline(path):
    """fingerprint -> (count, description). Missing file = empty baseline."""
    out = {}
    if not os.path.exists(path):
        return out
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 2:
                continue
            fp, count = parts[0], parts[1]
            desc = parts[2] if len(parts) > 2 else ""
            try:
                out[fp] = (int(count), desc)
            except ValueError:
                continue
    return out


def write_baseline(path, counted):
    lines = [BASELINE_HEADER,
             "# <fingerprint> <count> <check> <location> <message>",
             "# Regenerate: python3 tools/lint_ratchet.py run "
             "--build-dir <dir> --update-baseline"]
    for fp in sorted(counted):
        count, f = counted[fp]
        lines.append(f"{fp} {count} {f.check} {f.location()} {f.message}")
    with open(path, "w", encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def compare(root, findings, baseline):
    """Returns (new_findings, fixed_fingerprints)."""
    counted = count_fingerprints(root, findings)
    new = []
    for fp, (count, sample) in sorted(counted.items()):
        pinned = baseline.get(fp, (0, ""))[0]
        if count > pinned:
            new.append((fp, count - pinned, sample))
    fixed = []
    for fp, (pinned, desc) in sorted(baseline.items()):
        have = counted.get(fp, (0, None))[0]
        if have < pinned:
            fixed.append((fp, pinned - have, desc))
    return new, fixed


def report(new, fixed):
    for fp, n, desc in fixed:
        print(f"ratchet: baseline entry no longer fires ({n}x): {fp} {desc}")
    if fixed:
        print("ratchet: progress! re-pin with --update-baseline to lock "
              "the improvement in")
    if new:
        print(f"ratchet: {sum(n for _, n, _ in new)} NEW clang-tidy "
              f"finding(s) not in the baseline:", file=sys.stderr)
        for fp, n, f in new:
            print(f"  {f.location()}: {f.message} [{f.check}] "
                  f"(fingerprint {fp}, {n} new)", file=sys.stderr)
        print("ratchet: fix them, or pin deliberately with "
              "--update-baseline", file=sys.stderr)


# ---------------------------------------------------------------------------
# clang-tidy invocation
# ---------------------------------------------------------------------------

def repo_sources(root):
    out = []
    for sub in ("src", "tools/scenario_runner", "tools/ssr_node"):
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith(".cpp"):
                    out.append(os.path.join(dirpath, fn))
    return sorted(out)


def run_clang_tidy(root, build_dir, binary, jobs):
    if shutil.which(binary) is None:
        return None, f"{binary} not found on PATH"
    ccdb = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(ccdb):
        return None, (f"{ccdb} missing — configure with "
                      f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
    sources = repo_sources(root)
    chunks = []
    # One process per source keeps memory bounded; -j parallelism via a
    # simple pool of Popen objects.
    procs, pending = [], list(sources)
    while pending or procs:
        while pending and len(procs) < jobs:
            src = pending.pop(0)
            procs.append((src, subprocess.Popen(
                [binary, "-p", build_dir, "--quiet", src],
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                text=True)))
        src, proc = procs.pop(0)
        stdout, _ = proc.communicate()
        chunks.append(stdout)
    return "\n".join(chunks), None


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------

def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("mode", choices=["run", "check"])
    ap.add_argument("--root", default=None, help="repo root")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default tools/clang_tidy_baseline.txt)")
    ap.add_argument("--build-dir", default="build",
                    help="[run] build dir with compile_commands.json")
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="[run] clang-tidy binary")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--findings", default=None,
                    help="[check] pre-recorded clang-tidy output file")
    ap.add_argument("--findings-out", default=None,
                    help="[run] where to save raw findings (artifact)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="re-pin the baseline to the current findings")
    args = ap.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(script_dir, ".."))
    baseline_path = args.baseline or os.path.join(
        script_dir, "clang_tidy_baseline.txt")

    if args.mode == "run":
        text, err = run_clang_tidy(root, args.build_dir, args.clang_tidy,
                                   args.jobs)
        if text is None:
            print(f"lint_ratchet: cannot run clang-tidy: {err}",
                  file=sys.stderr)
            return 1
        if args.findings_out:
            with open(args.findings_out, "w", encoding="utf-8") as f:
                f.write(text)
    else:
        if not args.findings:
            print("lint_ratchet: check mode needs --findings FILE",
                  file=sys.stderr)
            return 2
        try:
            with open(args.findings, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"lint_ratchet: {e}", file=sys.stderr)
            return 2

    findings = parse_findings(text, root)
    if args.update_baseline:
        write_baseline(baseline_path, count_fingerprints(root, findings))
        print(f"lint_ratchet: pinned {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    new, fixed = compare(root, findings, baseline)
    report(new, fixed)
    if not new:
        print(f"lint_ratchet: OK — {len(findings)} finding(s), all pinned "
              f"({len(baseline)} baseline entries)")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
